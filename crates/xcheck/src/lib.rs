#![forbid(unsafe_code)]
//! Workspace static-analysis pass (text/token level, no external
//! parser deps — build hosts have no crates.io access).
//!
//! Rules, tuned to this codebase's determinism requirements:
//!
//! * **`wallclock`** — `SystemTime::now` / `Instant::now` /
//!   `thread::sleep` are forbidden outside wall-clock-ok modules
//!   (feeders, benches, the `bsync::time` facade itself). Everything
//!   on a deterministic path must take time from `bsync::time::Clock`.
//! * **`unwrap`** — `.unwrap()` / `.expect(` are forbidden in
//!   non-test library code of the stream/broker hot-path crates
//!   (core, broker, mq, analytics, corsaro, bsync); convert to typed
//!   errors or justify with an inline `// xcheck:allow(unwrap) — why`.
//! * **`facade`** — importing `parking_lot`, `crossbeam::channel`, or
//!   `std::sync::{Mutex,RwLock,Condvar,atomic,mpsc,…}` anywhere but
//!   `crates/bsync` bypasses the sync facade (and with it the
//!   loom-lite model checker); forbidden.
//! * **`unsafe-root`** — every crate root (including vendor shims)
//!   must carry `#![forbid(unsafe_code)]`.
//! * **`exit`** — `process::exit(` / `process::abort(` are forbidden
//!   in library code: they skip destructors, tear down sibling worker
//!   threads mid-write, and make the process un-supervisable. Return
//!   a typed error (or `ExitCode` from `main`) instead; CLI gates
//!   that genuinely must exit are waived in `xcheck.allow`.
//! * **`catch-unwind`** — `catch_unwind(` is an isolation boundary
//!   that silently converts panics into control flow; every use must
//!   be a reviewed recovery point justified with an inline
//!   `// xcheck:allow(catch-unwind) — why` (the worker-loop and
//!   prefetch boundaries that feed the supervisor).
//! * **`deprecated-api`** — constructors kept only as back-compat
//!   shims (`DataInterface::Broker(…)`) are forbidden in new library
//!   code; `rustc`'s `#[deprecated]` lint already covers in-crate and
//!   test uses, this rule makes the ban visible in the same pass as
//!   the other workspace conventions.
//!
//! Suppression is explicit and reviewable: either an inline
//! `// xcheck:allow(<rule>)` comment on (or directly above) the line,
//! or a `<rule> <path-prefix>` entry in the checked-in `xcheck.allow`
//! at the workspace root. `#[cfg(test)]` modules and functions inside
//! `src/` are skipped (tests may sleep and unwrap); `tests/`,
//! `benches/` and `examples/` directories are never scanned.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test library code must not panic via
/// `.unwrap()`/`.expect(` (the stream/broker hot paths).
const HOT_PATH_CRATES: &[&str] = &[
    "analytics",
    "broker",
    "bsync",
    "core",
    "corsaro",
    "mq",
    "mrt",
    "rib",
];

const WALLCLOCK_TOKENS: &[&str] = &["SystemTime::now", "Instant::now", "thread::sleep"];
const UNWRAP_TOKENS: &[&str] = &[".unwrap()", ".expect("];
const EXIT_TOKENS: &[&str] = &["process::exit(", "process::abort("];
const CATCH_UNWIND_TOKENS: &[&str] = &["catch_unwind("];
const STD_SYNC_BANNED: &[&str] = &["Mutex", "RwLock", "Condvar", "atomic", "mpsc", "Barrier"];
const DEPRECATED_TOKENS: &[&str] = &["DataInterface::Broker("];

/// One violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// `(rule, path-prefix)` pairs from `xcheck.allow`.
pub type AllowList = Vec<(String, String)>;

/// Parse the allowlist format: one `<rule> <path-prefix>` per line,
/// `#` comments and blanks ignored.
pub fn parse_allowlist(text: &str) -> AllowList {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, prefix) = l.split_once(char::is_whitespace)?;
            Some((rule.to_string(), prefix.trim().to_string()))
        })
        .collect()
}

fn allowed(allow: &AllowList, rule: &str, rel: &str) -> bool {
    allow
        .iter()
        .any(|(r, prefix)| r == rule && rel.starts_with(prefix.as_str()))
}

/// Lexer state carried across lines (block comments and multi-line
/// string literals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lex {
    Code,
    BlockComment,
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(usize),
}

/// Strip comments, string literals and char literals from one line so
/// token matching never fires on prose or patterns-in-strings.
/// Returns the stripped code and the lexer state for the next line.
fn strip_line(line: &str, mut st: Lex) -> (String, Lex) {
    let b = line.as_bytes();
    let n = b.len();
    let mut out = String::with_capacity(n);
    let mut i = 0;
    while i < n {
        match st {
            Lex::BlockComment => {
                if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    st = Lex::Code;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Lex::Str => {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    st = Lex::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                if b[i] == b'"'
                    && b[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&c| c == b'#')
                        .count()
                        == hashes
                {
                    st = Lex::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            Lex::Code => {
                let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'/' {
                    break; // line comment (incl. /// and //!)
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    st = Lex::BlockComment;
                    out.push(' ');
                    i += 2;
                } else if b[i] == b'"' {
                    st = Lex::Str;
                    out.push(' ');
                    i += 1;
                } else if (b[i] == b'r' || b[i] == b'b') && !prev_ident {
                    // Possible raw/byte string: r"…", r#"…"#, b"…", br"…".
                    let mut j = i;
                    if b[j] == b'b' {
                        j += 1;
                    }
                    let is_raw = j < n && b[j] == b'r';
                    if is_raw {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while j < n && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == b'"' && (is_raw || hashes == 0) {
                        st = if is_raw {
                            Lex::RawStr(hashes)
                        } else {
                            Lex::Str
                        };
                        out.push(' ');
                        i = j + 1;
                    } else {
                        out.push(b[i] as char);
                        i += 1;
                    }
                } else if b[i] == b'\'' {
                    // Char literal vs lifetime.
                    if i + 1 < n && b[i + 1] == b'\\' {
                        // Escaped char literal: skip to closing quote.
                        let mut j = i + 2;
                        while j < n && b[j] != b'\'' {
                            j += 1;
                        }
                        out.push(' ');
                        i = (j + 1).min(n);
                    } else if i + 2 < n && b[i + 2] == b'\'' {
                        out.push(' ');
                        i += 3;
                    } else {
                        // Lifetime: keep as-is (harmless for tokens).
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(b[i] as char);
                    i += 1;
                }
            }
        }
    }
    // A string interrupted by end-of-line continues on the next line
    // (multi-line literal); comments/raw strings likewise.
    (out, st)
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn has_allow_marker(raw: &str, rule: &str) -> bool {
    raw.contains(&format!("xcheck:allow({rule})"))
}

/// Does this stripped line import/use a sync primitive that bypasses
/// the facade?
fn facade_violation(code: &str) -> Option<&'static str> {
    if code.contains("parking_lot") {
        return Some("direct `parking_lot` use bypasses the bsync facade");
    }
    if code.contains("crossbeam::channel") {
        return Some("direct `crossbeam::channel` use bypasses the bsync facade");
    }
    if let Some(pos) = code.find("std::sync::") {
        let rest = &code[pos..];
        if STD_SYNC_BANNED.iter().any(|t| rest.contains(t)) {
            return Some(
                "direct `std::sync` primitive bypasses the bsync facade (Arc alone is fine)",
            );
        }
    }
    None
}

/// Which rule families apply to a workspace-relative path.
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    pub wallclock: bool,
    pub unwrap: bool,
    pub facade: bool,
    pub exit: bool,
    pub catch_unwind: bool,
    pub deprecated: bool,
}

/// Scope from path conventions: `crates/*/src` and root `src/` get the
/// full pass (facade excepted for `crates/bsync`, which *is* the
/// facade; unwrap only on hot-path crates); everything else — vendor
/// shims, tests/, examples/, benches/ — only sees the crate-root
/// `unsafe-root` check, handled separately.
pub fn scope_for(rel: &str) -> Option<RuleScope> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let crate_name = rest.split('/').next().unwrap_or("");
        if !rest
            .strip_prefix(crate_name)
            .is_some_and(|r| r.starts_with("/src/"))
        {
            return None;
        }
        return Some(RuleScope {
            wallclock: true,
            unwrap: HOT_PATH_CRATES.contains(&crate_name),
            facade: crate_name != "bsync",
            exit: true,
            catch_unwind: true,
            // The shim's own definition lives in crates/broker (and is
            // exercised by a #[cfg(test)] test there, which this pass
            // skips anyway); everywhere else a new use is a violation.
            deprecated: crate_name != "broker",
        });
    }
    if rel.starts_with("src/") {
        return Some(RuleScope {
            wallclock: true,
            unwrap: false,
            facade: true,
            exit: true,
            catch_unwind: true,
            deprecated: true,
        });
    }
    None
}

/// Run the line rules over one file's contents.
pub fn scan_file(rel: &str, content: &str, scope: RuleScope, allow: &AllowList) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let raw_lines: Vec<&str> = content.lines().collect();
    let mut st = Lex::Code;
    // `#[cfg(test)]`-gated item skipping.
    let mut pending_cfg_test = false;
    let mut skip_depth: Option<i64> = None;
    for (idx, raw) in raw_lines.iter().enumerate() {
        let (code, next_st) = strip_line(raw, st);
        st = next_st;
        if let Some(depth) = &mut skip_depth {
            *depth += brace_delta(&code);
            if *depth <= 0 {
                skip_depth = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            let d = brace_delta(&code);
            if d > 0 {
                // `#[cfg(test)] mod t { …` on one line.
                skip_depth = Some(d);
                pending_cfg_test = false;
            }
            continue;
        }
        if pending_cfg_test {
            let t = code.trim_start();
            if t.starts_with("#[") {
                // Further attributes; keep waiting for the item.
            } else {
                let d = brace_delta(&code);
                if d > 0 {
                    skip_depth = Some(d);
                }
                // `mod x;` / `use …;` — single-line item, nothing to skip.
                pending_cfg_test = false;
            }
            continue;
        }

        let line_no = idx + 1;
        let marker_here = |rule: &str| {
            has_allow_marker(raw, rule)
                || (idx > 0 && has_allow_marker(raw_lines[idx - 1], rule))
                || allowed(allow, rule, rel)
        };
        if scope.wallclock && !marker_here("wallclock") {
            for tok in WALLCLOCK_TOKENS {
                if code.contains(tok) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: "wallclock",
                        message: format!(
                            "`{tok}` on a deterministic path; take time from bsync::time::Clock"
                        ),
                    });
                }
            }
        }
        if scope.unwrap && !marker_here("unwrap") {
            for tok in UNWRAP_TOKENS {
                if code.contains(tok) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: "unwrap",
                        message: format!(
                            "`{tok}` in hot-path library code; use a typed error or justify with `xcheck:allow(unwrap)`",
                            tok = tok.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if scope.facade && !marker_here("facade") {
            if let Some(msg) = facade_violation(&code) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: line_no,
                    rule: "facade",
                    message: msg.to_string(),
                });
            }
        }
        if scope.exit && !marker_here("exit") {
            for tok in EXIT_TOKENS {
                if code.contains(tok) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: "exit",
                        message: format!(
                            "`{}` in library code skips destructors and kills sibling workers; return a typed error (or ExitCode from main)",
                            tok.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if scope.catch_unwind && !marker_here("catch-unwind") {
            for tok in CATCH_UNWIND_TOKENS {
                if code.contains(tok) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: "catch-unwind",
                        message: "`catch_unwind` is an isolation boundary; justify with `xcheck:allow(catch-unwind) — why`".to_string(),
                    });
                }
            }
        }
        if scope.deprecated && !marker_here("deprecated-api") {
            for tok in DEPRECATED_TOKENS {
                if code.contains(tok) {
                    diags.push(Diagnostic {
                        file: rel.to_string(),
                        line: line_no,
                        rule: "deprecated-api",
                        message: format!(
                            "`{}…)` is a back-compat shim; construct the client explicitly (`DataInterface::client(…)` or `BgpStreamBuilder::broker_client`)",
                            tok
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// Check a crate-root file for `#![forbid(unsafe_code)]`.
pub fn check_crate_root(rel: &str, content: &str) -> Option<Diagnostic> {
    if content.contains("#![forbid(unsafe_code)]") {
        None
    } else {
        Some(Diagnostic {
            file: rel.to_string(),
            line: 1,
            rule: "unsafe-root",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf()];
    for parent in ["crates", "vendor"] {
        if let Ok(entries) = std::fs::read_dir(root.join(parent)) {
            let mut v: Vec<_> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            v.sort();
            dirs.extend(v);
        }
    }
    dirs
}

/// Walk upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Run the whole pass over a workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> Vec<Diagnostic> {
    let allow = std::fs::read_to_string(root.join("xcheck.allow"))
        .map(|t| parse_allowlist(&t))
        .unwrap_or_default();
    let mut diags = Vec::new();

    // Line rules over crates/*/src and the root facade's src/.
    let mut files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut v: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        v.sort();
        for dir in v {
            collect_rs(&dir.join("src"), &mut files);
        }
    }
    collect_rs(&root.join("src"), &mut files);
    for path in &files {
        let rel = rel_str(root, path);
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        if let Ok(content) = std::fs::read_to_string(path) {
            diags.extend(scan_file(&rel, &content, scope, &allow));
        }
    }

    // Crate-root unsafe check for every member, vendor included.
    for dir in crate_dirs(root) {
        for name in ["lib.rs", "main.rs"] {
            let path = dir.join("src").join(name);
            if path.is_file() {
                if let Ok(content) = std::fs::read_to_string(&path) {
                    let rel = rel_str(root, &path);
                    diags.extend(check_crate_root(&rel, &content));
                }
            }
        }
    }

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: RuleScope = RuleScope {
        wallclock: true,
        unwrap: true,
        facade: true,
        exit: true,
        catch_unwind: true,
        deprecated: true,
    };

    #[test]
    fn bad_fixture_trips_every_rule() {
        let bad = include_str!("../fixtures/bad.rs");
        let diags = scan_file("crates/core/src/bad.rs", bad, FULL, &Vec::new());
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"wallclock"), "diags: {diags:?}");
        assert!(rules.contains(&"unwrap"), "diags: {diags:?}");
        assert!(rules.contains(&"facade"), "diags: {diags:?}");
        assert!(rules.contains(&"exit"), "diags: {diags:?}");
        assert!(rules.contains(&"catch-unwind"), "diags: {diags:?}");
        assert!(rules.contains(&"deprecated-api"), "diags: {diags:?}");
        assert!(
            check_crate_root("crates/core/src/bad.rs", bad).is_some(),
            "fixture must also miss forbid(unsafe_code)"
        );
        // file:line diagnostics point at real lines.
        for d in &diags {
            assert!(d.line > 0 && d.line <= bad.lines().count());
        }
    }

    #[test]
    fn clean_fixture_passes() {
        let clean = include_str!("../fixtures/clean.rs");
        let diags = scan_file("crates/core/src/clean.rs", clean, FULL, &Vec::new());
        assert!(diags.is_empty(), "diags: {diags:?}");
        assert!(check_crate_root("crates/core/src/clean.rs", clean).is_none());
    }

    #[test]
    fn inline_allow_comment_suppresses() {
        let src = "fn f() {\n    // xcheck:allow(unwrap) — impossible by construction\n    let x: Option<u8> = Some(1); let _ = x.unwrap();\n}\n";
        assert!(scan_file("crates/core/src/x.rs", src, FULL, &Vec::new()).is_empty());
        let same_line =
            "fn f() { let _ = std::time::Instant::now(); } // xcheck:allow(wallclock)\n";
        assert!(scan_file("crates/core/src/x.rs", same_line, FULL, &Vec::new()).is_empty());
    }

    #[test]
    fn allowlist_file_suppresses_by_prefix() {
        let allow = parse_allowlist(
            "# comment\nwallclock crates/collector-sim/src/feeder.rs\nunwrap crates/bench/\n",
        );
        let src = "fn f() { std::thread::sleep(d); }\n";
        assert!(scan_file(
            "crates/collector-sim/src/feeder.rs",
            src,
            RuleScope {
                wallclock: true,
                unwrap: false,
                facade: true,
                exit: true,
                catch_unwind: true,
                deprecated: true
            },
            &allow
        )
        .is_empty());
        // Same content elsewhere still trips.
        assert_eq!(
            scan_file("crates/collector-sim/src/lib.rs", src, FULL, &allow).len(),
            1
        );
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = r##"fn f() {
    let s = "call .unwrap() and Instant::now here";
    let r = r#"parking_lot::Mutex inside raw string"#;
    /* std::sync::Mutex in block comment */
    // std::sync::Condvar in line comment
    let _ = (s, r);
}
"##;
        assert!(scan_file("crates/core/src/x.rs", src, FULL, &Vec::new()).is_empty());
    }

    #[test]
    fn cfg_test_modules_and_fns_are_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); Some(1).unwrap(); }\n}\n";
        assert!(scan_file("crates/core/src/x.rs", src, FULL, &Vec::new()).is_empty());
        let fn_gated = "#[cfg(test)]\npub fn helper() {\n    std::thread::sleep(d);\n}\nfn real() { Some(1).unwrap(); }\n";
        let diags = scan_file("crates/core/src/x.rs", fn_gated, FULL, &Vec::new());
        assert_eq!(diags.len(), 1, "only the non-test unwrap: {diags:?}");
        assert_eq!(diags[0].rule, "unwrap");
    }

    #[test]
    fn facade_rule_spares_arc_and_scope() {
        let ok = "use std::sync::Arc;\nuse crossbeam::scope;\n";
        assert!(scan_file("crates/core/src/x.rs", ok, FULL, &Vec::new()).is_empty());
        let bad = "use std::sync::{Arc, Mutex};\n";
        assert_eq!(
            scan_file("crates/core/src/x.rs", bad, FULL, &Vec::new()).len(),
            1
        );
        let atomics = "use std::sync::atomic::AtomicU64;\n";
        assert_eq!(
            scan_file("crates/core/src/x.rs", atomics, FULL, &Vec::new()).len(),
            1
        );
    }

    #[test]
    fn scope_rules_follow_paths() {
        assert!(scope_for("crates/broker/src/service.rs").unwrap().unwrap);
        assert!(scope_for("crates/rib/src/table.rs").unwrap().unwrap);
        assert!(
            !scope_for("crates/broker/src/interface.rs")
                .unwrap()
                .deprecated
        );
        assert!(scope_for("crates/core/src/stream.rs").unwrap().deprecated);
        assert!(!scope_for("crates/topology/src/lib.rs").unwrap().unwrap);
        assert!(!scope_for("crates/bsync/src/lib.rs").unwrap().facade);
        assert!(scope_for("src/worlds.rs").unwrap().wallclock);
        assert!(scope_for("crates/broker/tests/live.rs").is_none());
        assert!(scope_for("vendor/parking_lot/src/lib.rs").is_none());
    }
}
