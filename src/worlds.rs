//! Canned simulation worlds for examples, tests and the benchmark
//! harness. Each builder wires together a topology, a control plane,
//! collectors, a broker index and a scripted scenario, returning a
//! ready-to-run [`World`].

use std::path::PathBuf;
use std::sync::Arc;

use bgp_types::{Asn, Prefix};
use broker::Index;
use collector_sim::{standard_collectors, SimConfig, Simulator};
use topology::control::ControlPlane;
use topology::events::Scenario;
use topology::gen::{generate, top_isps_of_country, TopologyConfig};

/// A wired-up simulation plus the knobs the case studies need.
pub struct World {
    /// The collector simulator (owns the control plane).
    pub sim: Simulator,
    /// Broker index the simulator publishes into.
    pub index: Arc<Index>,
    /// Archive directory.
    pub dir: PathBuf,
    /// Collector names, in creation order.
    pub collectors: Vec<String>,
    /// Scenario annotations (what was scripted where).
    pub info: WorldInfo,
}

/// Ground-truth annotations of the scripted scenario.
#[derive(Clone, Debug, Default)]
pub struct WorldInfo {
    /// Victim AS of a hijack scenario.
    pub victim: Option<Asn>,
    /// The victim's monitored IP ranges.
    pub victim_ranges: Vec<Prefix>,
    /// Attacker AS.
    pub attacker: Option<Asn>,
    /// Hijack episodes (start, duration).
    pub hijacks: Vec<(u64, u64)>,
    /// Country under outage and its top ISPs.
    pub country: Option<[u8; 2]>,
    /// The ISPs taken down.
    pub country_isps: Vec<Asn>,
    /// Outage episodes (start, duration).
    pub outages: Vec<(u64, u64)>,
    /// RTBH episodes (start, duration, origin, black-holed host).
    pub rtbh: Vec<(u64, u64, Asn, Prefix)>,
    /// The AS scripted to leak routes (RFC 7908).
    pub leaker: Option<Asn>,
    /// Leak episodes (start, duration).
    pub leaks: Vec<(u64, u64)>,
    /// Suggested horizon (virtual seconds) to run to.
    pub horizon: u64,
}

/// A unique scratch directory under the system temp dir.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "bgpstream-world-{}-{}-{}",
        tag,
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

fn wire(
    cp: ControlPlane,
    n_ris: usize,
    n_rv: usize,
    vps_each: usize,
    full_frac: f64,
    seed: u64,
    dir: PathBuf,
) -> World {
    let specs = standard_collectors(&cp, n_ris, n_rv, vps_each, full_frac, seed);
    let collectors = specs.iter().map(|s| s.name.clone()).collect();
    let mut cfg = SimConfig::new(&dir);
    cfg.seed = seed;
    let mut sim = Simulator::new(cp, specs, cfg);
    let index = Index::shared();
    sim.attach_index(index.clone());
    World {
        sim,
        index,
        dir,
        collectors,
        info: WorldInfo::default(),
    }
}

/// The quickstart world: a small Internet, one RIS + one RouteViews
/// collector, light route flapping. Run it with
/// `world.sim.run_until(world.info.horizon)`.
pub fn quickstart(dir: PathBuf, seed: u64) -> World {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX);
    let mut world = wire(cp, 1, 1, 5, 0.8, seed, dir);
    let topo = world.sim.control_plane().topology().clone();
    let mut sc = Scenario::new();
    for (k, n) in topo
        .nodes
        .iter()
        .filter(|n| !n.prefixes_v4.is_empty())
        .take(8)
        .enumerate()
    {
        sc.flap(120 + 211 * k as u64, 4, 900, n.asn, n.prefixes_v4[0].prefix);
    }
    world.sim.schedule(&sc);
    world.info.horizon = 3600;
    world
}

/// The Figure 6 scenario: an attacker repeatedly announces
/// more-specifics of a victim's IP ranges. `episodes` hijack events
/// are spread over `horizon` seconds, each lasting ~1 h.
pub fn hijack_scenario(dir: PathBuf, seed: u64, horizon: u64, episodes: usize) -> World {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX);
    let mut world = wire(cp, 1, 1, 5, 1.0, seed, dir);
    let topo = world.sim.control_plane().topology().clone();
    // Victim: the AS with the most IPv4 prefixes (a research network
    // announcing many ranges, like GARR's 78).
    let victim = topo
        .nodes
        .iter()
        .max_by_key(|n| n.prefixes_v4.len())
        .expect("nonempty topology");
    let attacker = topo
        .nodes
        .iter()
        .rev()
        .find(|n| n.asn != victim.asn && n.tier == topology::Tier::Edge)
        .expect("attacker");
    let ranges: Vec<Prefix> = victim.prefixes_v4.iter().map(|p| p.prefix).collect();
    let mut sc = Scenario::new();
    let duration = 3600.min(horizon / 8).max(600);
    let mut hijacks = Vec::new();
    for e in 0..episodes {
        let frac = (e as u64 + 1) * horizon / (episodes as u64 + 1);
        // Announce up to 7 more-specifics of the victim's space
        // (the GARR event involved 7 /24s).
        for (k, range) in ranges.iter().take(7).enumerate() {
            if let Some((lo, hi)) = range.children() {
                let sub = if k % 2 == 0 { lo } else { hi };
                sc.hijack(frac, duration, attacker.asn, sub);
            }
        }
        hijacks.push((frac, duration));
    }
    world.sim.schedule(&sc);
    world.info = WorldInfo {
        victim: Some(victim.asn),
        victim_ranges: ranges,
        attacker: Some(attacker.asn),
        hijacks,
        horizon,
        ..Default::default()
    };
    world
}

/// A §6.2 route-leak scenario: a multi-homed edge AS mis-applies its
/// export filters for `episodes` episodes spread over `horizon`
/// seconds, re-exporting routes between its providers (RFC 7908).
pub fn leak_scenario(dir: PathBuf, seed: u64, horizon: u64, episodes: usize) -> World {
    let cp = ControlPlane::new(Arc::new(generate(&TopologyConfig::tiny(seed))), u64::MAX);
    let mut world = wire(cp, 1, 1, 5, 1.0, seed, dir);
    let topo = world.sim.control_plane().topology().clone();
    let leaker = topo
        .nodes
        .iter()
        .find(|n| n.tier == topology::Tier::Edge && n.providers.len() >= 2)
        .map(|n| n.asn)
        .expect("multi-homed edge exists in tiny topology");
    let mut sc = Scenario::new();
    let duration = 1800.min(horizon / (episodes as u64 * 2 + 1)).max(600);
    let mut leaks = Vec::new();
    for e in 0..episodes {
        let start = (e as u64 + 1) * horizon / (episodes as u64 + 1);
        sc.leak(start, duration, leaker);
        leaks.push((start, duration));
    }
    world.sim.schedule(&sc);
    world.info = WorldInfo {
        leaker: Some(leaker),
        leaks,
        horizon,
        ..Default::default()
    };
    world
}

/// The Figure 10 scenario: government-ordered outages. The top
/// `n_isps` transit providers of one country go down together for
/// ~3 h, once per `period` seconds.
pub fn outage_scenario(dir: PathBuf, seed: u64, horizon: u64, episodes: usize) -> World {
    // A bigger topology so one country has several ISPs.
    let cfg = TopologyConfig {
        seed,
        ..TopologyConfig::default()
    };
    let cp = ControlPlane::new(Arc::new(generate(&cfg)), u64::MAX);
    let mut world = wire(cp, 2, 1, 6, 1.0, seed, dir);
    let topo = world.sim.control_plane().topology().clone();
    // Pick the country (other than the tier-1 home countries) with the
    // most transit ISPs.
    let mut best: Option<([u8; 2], Vec<Asn>)> = None;
    for cc in topology::gen::COUNTRIES.iter().skip(5) {
        let isps = top_isps_of_country(&topo, **cc, 0);
        if best.as_ref().is_none_or(|(_, b)| isps.len() > b.len()) {
            best = Some((**cc, isps));
        }
    }
    let (country, mut isps) = best.expect("countries exist");
    isps.truncate(5);
    let mut sc = Scenario::new();
    let duration = 3 * 3600;
    let mut outages = Vec::new();
    for e in 0..episodes {
        let start = (e as u64 + 1) * horizon / (episodes as u64 + 1);
        for isp in &isps {
            sc.outage(start, duration, *isp);
        }
        outages.push((start, duration));
    }
    world.sim.schedule(&sc);
    world.info = WorldInfo {
        country: Some(country),
        country_isps: isps,
        outages,
        horizon,
        ..Default::default()
    };
    world
}

/// The §4.3 scenario: `episodes` RTBH requests from random edge ASes,
/// with the duration distribution of the paper (80 % under a day,
/// 20 % under 40 minutes — scaled into the horizon).
pub fn rtbh_scenario(dir: PathBuf, seed: u64, horizon: u64, episodes: usize) -> World {
    let cfg = TopologyConfig {
        seed,
        ..TopologyConfig::default()
    };
    let cp = ControlPlane::new(Arc::new(generate(&cfg)), u64::MAX);
    let mut world = wire(cp, 1, 1, 6, 1.0, seed, dir);
    let topo = world.sim.control_plane().topology().clone();
    // Victims: mostly stubs, but some customer-rich transit ASes so
    // the "partially reachable during RTBH" population of Figure 4a
    // (customers/peers still reaching the destination) exists.
    let edge_victims: Vec<&topology::AsNode> = topo
        .nodes
        .iter()
        .filter(|n| n.tier == topology::Tier::Edge && !n.providers.is_empty())
        .collect();
    let transit_victims: Vec<&topology::AsNode> = topo
        .nodes
        .iter()
        .filter(|n| {
            n.tier == topology::Tier::Transit && !n.providers.is_empty() && n.customers.len() >= 2
        })
        .collect();
    let mut sc = Scenario::new();
    let mut rtbh = Vec::new();
    for e in 0..episodes {
        let v = if e % 3 == 2 && !transit_victims.is_empty() {
            transit_victims[(e * 5 + seed as usize) % transit_victims.len()]
        } else {
            edge_victims[(e * 7 + seed as usize) % edge_victims.len()]
        };
        let start = (e as u64 + 1) * horizon / (episodes as u64 + 2);
        // 20 % short (~30 min), 80 % longer episodes.
        let duration = if e % 5 == 0 { 1800 } else { 3600 * 3 };
        let host = v.prefixes_v4[0].prefix.host(e as u128 + 1);
        sc.rtbh(start, duration, v.asn, host);
        rtbh.push((start, duration, v.asn, host));
    }
    world.sim.schedule(&sc);
    world.info = WorldInfo {
        rtbh,
        horizon,
        ..Default::default()
    };
    world
}

/// A longitudinal world: `months` of growth, RIB-only snapshots every
/// `step` months on `n_ris + n_rv` collectors. Returns the world and
/// the snapshot times (already dumped).
pub fn longitudinal(
    dir: PathBuf,
    seed: u64,
    months: u32,
    step: u32,
    topo_cfg: Option<TopologyConfig>,
) -> (World, Vec<u64>) {
    let spm = 10_000u64;
    let cfg = topo_cfg.unwrap_or(TopologyConfig {
        seed,
        months,
        moas_frac: 0.04,
        ..TopologyConfig::default()
    });
    let topo = Arc::new(generate(&cfg));
    let cp = ControlPlane::new(topo, spm);
    let specs = standard_collectors(&cp, 2, 2, 6, 0.7, seed);
    let collectors = specs.iter().map(|s| s.name.clone()).collect();
    let mut sim_cfg = SimConfig::new(&dir);
    sim_cfg.seed = seed;
    sim_cfg.emit_updates = false;
    sim_cfg.emit_ribs = false;
    let mut sim = Simulator::new(cp, specs, sim_cfg);
    let index = Index::shared();
    sim.attach_index(index.clone());
    let times: Vec<u64> = (0..=months)
        .step_by(step.max(1) as usize)
        .map(|m| m as u64 * spm)
        .collect();
    for &t in &times {
        sim.force_rib_dump(t);
    }
    let mut world = World {
        sim,
        index,
        dir,
        collectors,
        info: WorldInfo {
            horizon: months as u64 * spm,
            ..Default::default()
        },
    };
    world.info.horizon = months as u64 * spm;
    (world, times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_world_runs() {
        let dir = scratch_dir("qs");
        let mut w = quickstart(dir.clone(), 3);
        w.sim.run_until(w.info.horizon);
        assert!(w.index.len() > 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hijack_world_annotations_consistent() {
        let dir = scratch_dir("hw");
        let w = hijack_scenario(dir.clone(), 5, 6 * 3600, 2);
        assert!(w.info.victim.is_some());
        assert!(w.info.attacker.is_some());
        assert_eq!(w.info.hijacks.len(), 2);
        assert!(!w.info.victim_ranges.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leak_world_annotations_consistent() {
        let dir = scratch_dir("lkw");
        let mut w = leak_scenario(dir.clone(), 77, 4 * 3600, 2);
        let leaker = w.info.leaker.unwrap();
        assert_eq!(w.info.leaks.len(), 2);
        // The leaker really is a multi-homed edge of this topology.
        let topo = w.sim.control_plane().topology().clone();
        let node = topo.node(leaker).unwrap();
        assert!(node.providers.len() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outage_world_has_isps() {
        let dir = scratch_dir("ow");
        let w = outage_scenario(dir.clone(), 7, 24 * 3600, 1);
        assert!(w.info.country.is_some());
        assert!(!w.info.country_isps.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn longitudinal_world_dumps_ribs() {
        let dir = scratch_dir("lw");
        let (w, times) = longitudinal(
            dir.clone(),
            9,
            12,
            6,
            Some(TopologyConfig {
                months: 12,
                ..TopologyConfig::tiny(9)
            }),
        );
        assert_eq!(times.len(), 3);
        assert_eq!(w.index.len(), 3 * w.collectors.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
