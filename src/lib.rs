//! Workspace root: canned simulation worlds shared by the runnable
//! examples, the integration tests and the benchmark harness.
//!
//! The individual crates are re-exported so examples can depend on a
//! single crate:
//!
//! * [`bgpstream`] — libBGPStream (core library);
//! * [`collector_sim`] / [`topology`] — the data-provider substrate;
//! * [`broker`], [`mrt`], [`bgp_types`] — lower layers;
//! * [`corsaro`], [`mq`], [`consumers`], [`analytics`] — upper layers;
//! * [`bmp`] — the RFC 7854 router-direct data path (§7 roadmap).

#![forbid(unsafe_code)]

pub use analytics;
pub use bgp_types;
pub use bgpstream;
pub use bmp;
pub use broker;
pub use bsync;
pub use collector_sim;
pub use consumers;
pub use corsaro;
pub use mq;
pub use mrt;
pub use topology;

pub mod worlds;
