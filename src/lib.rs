//! Workspace root: canned simulation worlds shared by the runnable
//! examples, the integration tests and the benchmark harness.
//!
//! The individual crates are re-exported so examples can depend on a
//! single crate:
//!
//! * [`bgpstream`] — libBGPStream (core library);
//! * [`collector_sim`] / [`topology`] — the data-provider substrate;
//! * [`broker`], [`mrt`], [`bgp_types`] — lower layers;
//! * [`corsaro`], [`mq`], [`consumers`], [`analytics`] — upper layers;
//! * [`rib`] — stateful RIB reconstruction and time-travel queries;
//! * [`bmp`] — the RFC 7854 router-direct data path (§7 roadmap).
//!
//! Applications should start from the [`prelude`], which re-exports
//! the blessed surface without the crate paths.

#![forbid(unsafe_code)]

pub use analytics;
pub use bgp_types;
pub use bgpstream;
pub use bmp;
pub use broker;
pub use bsync;
pub use collector_sim;
pub use consumers;
pub use corsaro;
pub use mq;
pub use mrt;
pub use rib;
pub use topology;

pub mod worlds;

/// The blessed user-facing surface, one import away:
///
/// ```
/// use bgpstream_repro::prelude::*;
///
/// let index = Index::shared();
/// let builder = BgpStream::builder()
///     .broker_client(LocalBroker::shared(index))
///     .filters(Filters::default());
/// let query = RibQuery::new().at(0);
/// # let _ = (builder, query);
/// ```
///
/// Configuration (`BgpStreamBuilder`, `DataInterface`, `Filters`),
/// reading (`BgpStream`, records, elems), continuous processing
/// (`run_pipeline`, `ShardedRuntime`, `Supervisor`), and RIB
/// reconstruction (`RibFold`, `RibFeeder`, `RibQuery`,
/// `MemoryRibStore`) — deep crate paths stay available for the rest.
pub mod prelude {
    pub use bgp_types::{AsPath, Asn, Community, CommunitySet, Prefix};
    pub use bgpstream::{
        parse_filter_string, BgpStream, BgpStreamBuilder, BgpStreamElem, BgpStreamRecord, ElemType,
        Filters, RecordStatus, StreamMode,
    };
    pub use broker::{BrokerClient, DataInterface, DumpType, Index, LocalBroker, RemoteBroker};
    pub use corsaro::{
        run_pipeline, Plugin, RibFeeder, ShardedRuntime, ShardedRuntimeBuilder, Supervisor,
        SupervisorConfig,
    };
    pub use rib::{
        MemoryRibStore, PrefixMatch, RibError, RibFold, RibQuery, RibStore, RibTable, TableView,
    };
}
